"""Tests for repro.dynamics.replanning."""

import pytest

from repro.core.problem import MSCInstance
from repro.dynamics.replanning import compare_windows, replan
from repro.dynamics.series import DynamicMSCInstance
from repro.graph.graph import WirelessGraph
from tests.conftest import path_graph


def shifting_series(T=4, k=1):
    """T topologies over 6 nodes where the 'important region' moves, so a
    static placement cannot serve all windows."""
    instances = []
    for t in range(T):
        g = WirelessGraph()
        g.add_nodes(range(6))
        # A moving path: at time t, nodes t..t+2 are chained.
        for i in range(5):
            g.add_edge(i, i + 1, length=2.0)  # long, unreliable baseline
        pair = (t % 3, (t % 3) + 3)  # demand shifts over time
        instances.append(
            MSCInstance(g, [pair], k, d_threshold=1.0)
        )
    return DynamicMSCInstance(instances)


class TestReplan:
    def test_static_window_equals_whole_horizon(self):
        dyn = shifting_series()
        static = replan(dyn, window=dyn.T)
        assert len(static.placements) == 1
        assert static.relocations == 0
        assert len(static.sigma_per_topology) == dyn.T

    def test_per_snapshot_replanning_maximizes_sigma(self):
        dyn = shifting_series()
        per_snapshot = replan(dyn, window=1)
        static = replan(dyn, window=dyn.T)
        # with k=1 and shifting demand, window=1 satisfies every snapshot
        assert per_snapshot.total_sigma == dyn.T
        assert per_snapshot.total_sigma >= static.total_sigma

    def test_relocations_counted(self):
        dyn = shifting_series()
        per_snapshot = replan(dyn, window=1)
        # demand shifts between snapshots -> placements change
        assert per_snapshot.relocations > 0

    def test_window_larger_than_horizon_ok(self):
        dyn = shifting_series(T=3)
        result = replan(dyn, window=10)
        assert len(result.placements) == 1

    def test_uneven_final_window(self):
        dyn = shifting_series(T=5)
        result = replan(dyn, window=2)
        assert len(result.placements) == 3  # 2 + 2 + 1
        assert len(result.sigma_per_topology) == 5

    def test_custom_solver_used(self):
        dyn = shifting_series()
        calls = []

        def solver(chunk):
            calls.append(chunk.T)
            return chunk.solve_sandwich()

        replan(dyn, window=2, solver=solver)
        assert calls == [2, 2]

    def test_invalid_window(self):
        dyn = shifting_series()
        with pytest.raises(Exception):
            replan(dyn, window=0)

    def test_summary(self):
        dyn = shifting_series()
        text = replan(dyn, window=2).summary()
        assert "window=2" in text and "relocations" in text


class TestCompareWindows:
    def test_tradeoff_curve_shape(self):
        dyn = shifting_series(T=6)
        results = compare_windows(dyn, [6, 2, 1])
        sigmas = [r.total_sigma for r in results]
        relocations = [r.relocations for r in results]
        # smaller windows never hurt σ on this construction...
        assert sigmas[0] <= sigmas[-1]
        # ...and cost at least as many relocations
        assert relocations[0] <= relocations[-1]

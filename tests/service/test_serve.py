"""Round-trip tests for ``repro serve``: a live service answering over TCP.

The contract under test: a long-lived server answering concurrent clients
returns placements **byte-identical** to offline library solves — across
admission batching, substrate LRU eviction/rebuild, retries, and journal
restore. Malformed requests are answered with structured errors and never
take the server down.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.core.registry import solve
from repro.experiments.workloads import rg_workload
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import PlannerService, serve_socket
from repro.service.substrates import SubstrateLRU, build_workload

WL_A = {"kind": "rg", "seed": 1, "n": 80}
WL_B = {"kind": "rg", "seed": 2, "n": 80}
P_T = 0.1


@contextmanager
def running_service(**service_kwargs):
    """A PlannerService on an ephemeral port, torn down afterwards."""
    ready = {}
    started = threading.Event()

    def run():
        async def main():
            service = PlannerService(**service_kwargs)
            await serve_socket(
                service,
                "127.0.0.1",
                0,
                ready=lambda host, port: (
                    ready.update(port=port), started.set(),
                ),
            )

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(30), "server did not start"
    try:
        yield ready["port"]
    finally:
        try:
            with ServiceClient(port=ready["port"], timeout=10) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(10)


@pytest.fixture(scope="module")
def server_port():
    with running_service(max_substrates=2, jobs=2) as port:
        yield port


def offline_place(spec, solver, k, m, pair_seed, seed):
    """What the service must return, computed the offline way."""
    workload = rg_workload(
        seed=spec["seed"], n=spec["n"], radius=spec.get("radius", 0.2),
        max_link_failure=spec.get("max_link_failure", 0.08),
    )
    instance = workload.instance(P_T, m=m, k=k, seed=pair_seed)
    result = solve(solver, instance, seed=seed)
    return {
        "edges": [[int(u), int(w)] for u, w in result.edges],
        "sigma": int(result.sigma),
        "satisfied": [bool(flag) for flag in result.satisfied],
        "pairs": [[int(u), int(w)] for u, w in instance.pairs],
    }


def served_subset(result):
    return {
        field: result[field]
        for field in ("edges", "sigma", "satisfied", "pairs")
    }


class TestRoundTrip:
    def test_place_matches_offline_byte_identical(self, server_port):
        with ServiceClient(port=server_port) as client:
            served = client.place(
                WL_A, solver="sandwich", k=3, m=10,
                p_threshold=P_T, pair_seed=7, seed=11,
            )
        expected = offline_place(WL_A, "sandwich", 3, 10, 7, 11)
        assert json.dumps(served_subset(served), sort_keys=True) == (
            json.dumps(expected, sort_keys=True)
        )

    def test_concurrent_clients_all_byte_identical(self, server_port):
        jobs = [
            (WL_A, "sandwich", 3, 10, 7, 11),
            (WL_A, "ea", 3, 10, 7, 11),
            (WL_A, "sandwich", 2, 8, 3, 5),
            (WL_B, "sandwich", 3, 10, 7, 11),
            (WL_A, "random", 3, 10, 7, 11),
            (WL_B, "ea", 2, 8, 3, 5),
        ]

        def one(job):
            spec, solver, k, m, pair_seed, seed = job
            with ServiceClient(port=server_port) as client:
                return client.place(
                    spec, solver=solver, k=k, m=m,
                    p_threshold=P_T, pair_seed=pair_seed, seed=seed,
                )

        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            served = list(pool.map(one, jobs))
        for job, result in zip(jobs, served):
            spec, solver, k, m, pair_seed, seed = job
            expected = offline_place(spec, solver, k, m, pair_seed, seed)
            assert served_subset(result) == expected, job

    def test_one_connection_pipelined_requests_batch(self, server_port):
        payloads = [
            {
                "op": "place", "workload": WL_A, "solver": solver,
                "k": 3, "m": 10, "p_threshold": P_T,
                "pair_seed": 7, "seed": 11,
            }
            for solver in ("sandwich", "ea", "aea", "random")
        ]
        with ServiceClient(port=server_port) as client:
            responses = client.request_many(payloads)
            stats = client.stats()
        for payload, response in zip(payloads, responses):
            assert response["ok"], response
            expected = offline_place(
                WL_A, payload["solver"], 3, 10, 7, 11
            )
            assert served_subset(response["result"]) == expected
        assert stats["batching"]["requests"] >= 1

    def test_sigma_round_trip(self, server_port):
        with ServiceClient(port=server_port) as client:
            placed = client.place(
                WL_A, solver="sandwich", k=3, m=10,
                p_threshold=P_T, pair_seed=7, seed=11,
            )
            audited = client.sigma(
                WL_A, pairs=placed["pairs"], edges=placed["edges"],
                p_threshold=P_T,
            )
        assert audited["sigma"] == placed["sigma"]
        assert audited["satisfied"] == placed["satisfied"]

    def test_whatif_session_round_trip(self, server_port):
        with ServiceClient(port=server_port) as client:
            placed = client.place(
                WL_A, solver="sandwich", k=3, m=10,
                p_threshold=P_T, pair_seed=7, seed=11,
            )
            opened = client.whatif(
                "t-session", "open", workload=WL_A, k=3, m=10,
                p_threshold=P_T, pair_seed=7,
            )
            assert opened["sigma"] == 0
            adopted = client.whatif(
                "t-session", "adopt", edges=placed["edges"]
            )
            assert adopted["sigma"] == placed["sigma"]
            summary = client.whatif("t-session", "summary")
            assert summary["edges"] == placed["edges"]
            undone = client.whatif("t-session", "undo")
            assert undone["undone"] is False  # adopt clears the undo stack
            closed = client.whatif("t-session", "close")
            assert closed["closed"] is True
            with pytest.raises(ServiceError, match="no open session"):
                client.whatif("t-session", "summary")


class TestDegradation:
    def test_malformed_requests_get_structured_errors(self, server_port):
        with ServiceClient(port=server_port) as client:
            client._file.write(b"{broken json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            # The connection survives and keeps serving.
            assert client.ping()

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"op": "echo"}, "unknown op"),
            ({"op": "place", "workload": WL_A, "k": "three"}, "'k'"),
            (
                {"op": "place", "workload": {"kind": "lattice"}, "k": 1},
                "workload kind",
            ),
            (
                {
                    "op": "place", "workload": WL_A, "k": 3, "m": 10,
                    "p_threshold": P_T, "solver": "nope",
                },
                "available",
            ),
            (
                {"op": "place", "workload": WL_A, "k": 3, "m": 10},
                "p_threshold",
            ),
        ],
    )
    def test_bad_requests_answered_not_fatal(
        self, server_port, payload, match
    ):
        with ServiceClient(port=server_port) as client:
            with pytest.raises(ServiceError, match=match):
                client.request(**payload)
            assert client.ping()

    def test_domain_error_keeps_its_type_under_retries(self):
        # A deterministic InstanceError must not surface as TaskError
        # even when the server has a retry budget.
        with running_service(retries=2) as port:
            with ServiceClient(port=port) as client:
                with pytest.raises(ServiceError) as info:
                    client.place(
                        WL_A, solver="sandwich", k=3, m=10_000,
                        p_threshold=P_T, pair_seed=7,
                    )
        assert info.value.error["type"] == "InstanceError"


class TestWarmCacheLifecycle:
    def test_lru_eviction_rebuild_is_byte_identical(self):
        with running_service(max_substrates=1) as port:
            with ServiceClient(port=port) as client:
                first = client.place(
                    WL_A, solver="sandwich", k=3, m=10,
                    p_threshold=P_T, pair_seed=7, seed=11,
                )
                client.place(  # evicts WL_A's substrate
                    WL_B, solver="sandwich", k=3, m=10,
                    p_threshold=P_T, pair_seed=7, seed=11,
                )
                again = client.place(  # cold rebuild of WL_A
                    WL_A, solver="sandwich", k=3, m=10,
                    p_threshold=P_T, pair_seed=7, seed=11,
                )
                stats = client.stats()
        assert stats["substrates"]["evictions"] >= 1
        assert json.dumps(first, sort_keys=True) == (
            json.dumps(again, sort_keys=True)
        )

    def test_warm_requests_hit_the_resident_substrate(self, server_port):
        with ServiceClient(port=server_port) as client:
            client.place(
                WL_A, solver="sandwich", k=2, m=8,
                p_threshold=P_T, pair_seed=1,
            )
            before = client.stats()["substrates"]["hits"]
            client.place(
                WL_A, solver="sandwich", k=2, m=8,
                p_threshold=P_T, pair_seed=2,
            )
            after = client.stats()["substrates"]["hits"]
        assert after > before

    def test_journal_restores_across_server_restarts(self, tmp_path):
        journal = str(tmp_path / "journal")
        request = dict(
            solver="sandwich", k=3, m=10,
            p_threshold=P_T, pair_seed=7, seed=11,
        )
        with running_service(journal_dir=journal) as port:
            with ServiceClient(port=port) as client:
                first = client.place(WL_A, **request)
                repeat = client.place(WL_A, **request)
        assert "restored" not in first
        assert repeat.pop("restored") is True
        assert repeat == first
        # A fresh server over the same journal restores without solving.
        with running_service(journal_dir=journal) as port:
            with ServiceClient(port=port) as client:
                revived = client.place(WL_A, **request)
                stats = client.stats()
        assert revived.pop("restored") is True
        assert revived == first
        assert stats["restored"] == 1
        assert stats["substrates"]["resident"] == 0  # never even built


class TestSubstrateLRUUnit:
    def test_hit_miss_eviction_accounting(self):
        lru = SubstrateLRU(maxsize=1)
        spec_a = {"kind": "rg", "seed": 1, "n": 30,
                  "radius": 0.3, "max_link_failure": 0.08}
        spec_b = {**spec_a, "seed": 2}
        assert lru.get(spec_a) is None
        entry_a = lru.put(lru.build(spec_a))
        assert lru.get(spec_a) is entry_a
        assert spec_a in lru
        lru.put(lru.build(spec_b))
        assert spec_a not in lru
        assert lru.evictions == 1
        stats = lru.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert len(stats["entries"]) == 1

    def test_equal_key_race_keeps_resident_entry(self):
        lru = SubstrateLRU(maxsize=2)
        spec = {"kind": "rg", "seed": 1, "n": 30,
                "radius": 0.3, "max_link_failure": 0.08}
        resident = lru.put(lru.build(spec))
        challenger = lru.build(spec)
        assert lru.put(challenger) is resident
        assert len(lru) == 1

    def test_rebuilt_substrate_is_equal_by_content(self):
        spec = {"kind": "rg", "seed": 1, "n": 30,
                "radius": 0.3, "max_link_failure": 0.08}
        a = build_workload(spec).substrate()
        b = build_workload(spec).substrate()
        assert a == b and a.fingerprint == b.fingerprint

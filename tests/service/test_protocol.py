"""Tests for the planner-service wire protocol (repro.service.protocol)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TaskError, TaskTimeoutError
from repro.service.protocol import (
    ProtocolError,
    coerce_seed,
    encode_response,
    error_response,
    ok_response,
    parse_pairs,
    parse_request,
    parse_workload,
    workload_key,
)


class TestParseRequest:
    def test_valid_request(self):
        payload = parse_request('{"op": "ping", "id": 7}')
        assert payload == {"op": "ping", "id": 7}

    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            parse_request("{not json")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request("[1, 2, 3]")

    def test_unknown_op_carries_request_id(self):
        with pytest.raises(ProtocolError, match="unknown op") as info:
            parse_request('{"op": "frobnicate", "id": 42}')
        assert info.value.request_id == 42

    def test_missing_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request('{"id": 1}')


class TestParseWorkload:
    def test_rg_defaults_filled(self):
        spec = parse_workload(
            {"workload": {"kind": "rg", "seed": 1, "n": 50}}
        )
        assert spec == {
            "kind": "rg", "seed": 1, "n": 50,
            "radius": 0.2, "max_link_failure": 0.08,
        }

    def test_gowalla(self):
        spec = parse_workload({"workload": {"kind": "gowalla", "seed": 42}})
        assert spec == {"kind": "gowalla", "seed": 42}

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown workload kind"):
            parse_workload({"workload": {"kind": "mesh"}})

    def test_missing_spec(self):
        with pytest.raises(ProtocolError, match="workload"):
            parse_workload({})

    def test_bad_n(self):
        with pytest.raises(ProtocolError, match="positive int"):
            parse_workload({"workload": {"kind": "rg", "n": -3}})

    def test_key_is_order_independent(self):
        a = parse_workload(
            {"workload": {"kind": "rg", "seed": 1, "n": 50}}
        )
        b = dict(reversed(list(a.items())))
        assert workload_key(a) == workload_key(b)

    def test_list_seed_round_trips_as_tuple(self):
        spec = parse_workload(
            {"workload": {"kind": "rg", "seed": [1, "bench"]}}
        )
        assert spec["seed"] == (1, "bench")
        assert coerce_seed([1, ["a", 2]]) == (1, ("a", 2))


class TestParsePairs:
    def test_valid(self):
        assert parse_pairs([[1, 2], [3, 4]], "t") == [(1, 2), (3, 4)]

    @pytest.mark.parametrize(
        "bad", ["nope", [[1]], [[1, 2, 3]], [["a", 2]], [None]]
    )
    def test_malformed(self, bad):
        with pytest.raises(ProtocolError):
            parse_pairs(bad, "t")


class TestResponses:
    def test_ok_envelope(self):
        assert ok_response(3, {"x": 1}) == {
            "id": 3, "ok": True, "result": {"x": 1},
        }

    def test_error_envelope_plain_exception(self):
        response = error_response(9, ValueError("boom"))
        assert response["ok"] is False
        assert response["error"]["type"] == "ValueError"
        assert "boom" in response["error"]["message"]

    def test_error_envelope_task_error_carries_attempts(self):
        exc = TaskError("died", task=("k",), attempts=3)
        error = error_response(1, exc)["error"]
        assert error["attempts"] == 3
        assert error["task"] == repr(("k",))

    def test_timeout_keeps_subclass_name(self):
        exc = TaskTimeoutError("slow", task="t", attempts=1)
        assert error_response(1, exc)["error"]["type"] == (
            "TaskTimeoutError"
        )

    def test_encode_is_one_json_line(self):
        line = encode_response(ok_response(1, {"a": 2}))
        assert line.endswith(b"\n")
        assert json.loads(line) == {"id": 1, "ok": True, "result": {"a": 2}}

"""Tests for repro.experiments.shm — the zero-copy shared-memory transport
behind the experiment fan-out — and its robustness-sweep integration:
byte-identical parallel results, exactly-one oracle build per distinct
base graph, and no leaked ``/dev/shm`` segments."""

import glob
import json
import os
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.experiments import shm
from repro.experiments import robustness_exp as rexp
from repro.graph.distances import DistanceOracle
from repro.graph.graph import graph_signature
from repro.graph.paths import graph_csr


@pytest.fixture(autouse=True)
def _clean_registries():
    """Each test starts and ends with pristine process-level registries."""
    yield
    shm.clear_memo()
    shm._LOCAL.clear()
    shm._ATTACHED.clear()
    for segment in shm._WORKER_SEGMENTS:
        segment.close()
    shm._WORKER_SEGMENTS.clear()


def _shm_files(names):
    return [f"/dev/shm/{name}" for name in names]


class TestPublication:
    def test_publish_attach_round_trip(self):
        arrays = {
            "demo": {
                "a": np.arange(6, dtype=np.float64).reshape(2, 3),
                "b": np.array([1, 2, 3], dtype=np.int64),
            }
        }
        publication = shm.publish(arrays)
        names = publication.segment_names()
        try:
            for path in _shm_files(names):
                assert os.path.exists(path)
            shm.attach_worker(publication.payload)
            attached = shm.get("demo")
            for key, original in arrays["demo"].items():
                assert np.array_equal(attached[key], original)
                assert attached[key].dtype == original.dtype
                assert not attached[key].flags.writeable
        finally:
            publication.close()
        for path in _shm_files(names):
            assert not os.path.exists(path)

    def test_close_is_idempotent(self):
        publication = shm.publish({"k": {"x": np.zeros(4)}})
        publication.close()
        publication.close()  # second close must not raise

    def test_failed_publish_releases_partial_segments(self, monkeypatch):
        # Force the SECOND segment allocation to fail (name collision)
        # so publish() has a live first segment it must roll back.
        taken = SharedMemory(
            create=True, size=8, name=f"{shm.SEGMENT_PREFIX}_test_taken"
        )
        fresh = f"{shm.SEGMENT_PREFIX}_test_fresh"
        try:
            names = iter([fresh, taken.name])
            monkeypatch.setattr(
                shm, "_next_segment_name", lambda: next(names)
            )
            with pytest.raises(FileExistsError):
                shm.publish(
                    {"k": {"good": np.zeros(8), "bad": np.zeros(8)}}
                )
            assert not os.path.exists(f"/dev/shm/{fresh}")
        finally:
            taken.close()
            taken.unlink()

    def test_local_registry_serves_serial_path(self):
        arrays = {"key": {"x": np.arange(3)}}
        assert shm.maybe_get("key") is None
        shm.register_local(arrays)
        assert np.array_equal(shm.get("key")["x"], arrays["key"]["x"])
        shm.unregister_local(arrays)
        assert shm.maybe_get("key") is None

    def test_get_raises_on_unknown_key(self):
        with pytest.raises(KeyError):
            shm.get("never-published")

    def test_memo_builds_once_per_process(self):
        calls = []
        factory = lambda: calls.append(1) or "value"  # noqa: E731
        assert shm.memo("k", factory) == "value"
        assert shm.memo("k", factory) == "value"
        assert len(calls) == 1
        shm.clear_memo()
        assert shm.memo("k", factory) == "value"
        assert len(calls) == 2


class TestRobustnessIntegration:
    def test_harness_cached_and_oracle_built_exactly_once(self):
        rexp._HARNESS_CACHE.clear()
        before = DistanceOracle.build_count
        harness_a, sigma_a = rexp._prepared_harness("quick", 91)
        assert DistanceOracle.build_count == before + 1
        harness_b, sigma_b = rexp._prepared_harness("quick", 91)
        assert harness_b is harness_a  # served from the per-process cache
        assert sigma_b == sigma_a
        assert DistanceOracle.build_count == before + 1

    def test_shared_memory_adoption_skips_the_oracle_build(self):
        rexp._HARNESS_CACHE.clear()
        harness, sigma = rexp._prepared_harness("quick", 92)
        instance = harness.instance
        key = f"oracle:{graph_signature(instance.graph)}"
        indptr, indices, data = graph_csr(instance.graph)
        shm.register_local(
            {
                key: {
                    "matrix": instance.oracle.matrix,
                    "indptr": indptr,
                    "indices": indices,
                    "data": data,
                    "nodes": np.asarray(
                        [int(label) for label in instance.graph.nodes],
                        dtype=np.int64,
                    ),
                }
            }
        )
        rexp._HARNESS_CACHE.clear()  # force the full rebuild path
        before = DistanceOracle.build_count
        adopted, adopted_sigma = rexp._prepared_harness(
            "quick", 92, shm_key=key
        )
        # The graph + matrix came from the registry: zero Dijkstra work.
        assert DistanceOracle.build_count == before
        assert adopted_sigma == sigma
        assert adopted.shortcuts == harness.shortcuts
        assert graph_signature(adopted.instance.graph) == graph_signature(
            instance.graph
        )

    def test_stale_publication_is_never_adopted(self):
        rexp._HARNESS_CACHE.clear()
        harness, _ = rexp._prepared_harness("quick", 93)
        instance = harness.instance
        key = f"oracle:{graph_signature(instance.graph)}"
        indptr, indices, data = graph_csr(instance.graph)
        shm.register_local(
            {
                key: {
                    "matrix": instance.oracle.matrix,
                    "indptr": indptr,
                    "indices": indices,
                    "data": data,
                    "nodes": np.asarray(
                        [int(label) for label in instance.graph.nodes],
                        dtype=np.int64,
                    ),
                }
            }
        )
        # A workload whose n differs from the published graph must fall
        # back to rebuilding instead of adopting mismatched arrays.
        assert rexp._shared_workload(key, instance.n + 1) is None

    def test_parallel_sweep_byte_identical_and_leak_free(self):
        rexp._HARNESS_CACHE.clear()
        serial = rexp.run_robustness(scale="quick", seed=5, jobs=1)
        rexp._HARNESS_CACHE.clear()
        parallel = rexp.run_robustness(scale="quick", seed=5, jobs=4)
        assert json.dumps(
            serial.to_json(), sort_keys=True
        ) == json.dumps(parallel.to_json(), sort_keys=True)
        # Publication teardown must leave /dev/shm clean for this process.
        leaked = glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}_{os.getpid()}_*")
        assert leaked == []

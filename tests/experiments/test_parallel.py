"""Tests for the deterministic experiment fan-out: ``fanout`` itself, the
byte-identity of parallel vs serial runs at every level (run_all, figure
sweeps, random-baseline trials, multi-seed stats), fault tolerance
(retries, worker crashes, hangs, checkpoint/resume), and the CLI flags."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.random_baseline import solve_random_baseline
from repro.exceptions import TaskError, TaskTimeoutError, ValidationError
from repro.experiments.parallel import fanout, fanout_report, resolve_jobs
from repro.experiments.runner import run_all, run_all_timed, run_experiment
from repro.util.resilience import RetryPolicy
from repro.util.serialization import TaskJournal

#: Fast schedule for fault-tolerance tests (jitter off for speed).
FAST_RETRY = RetryPolicy(
    attempts=3, base_delay=0.01, factor=1.0, max_delay=0.01, jitter=0.0
)


def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd: {x}")
    return x


class TestFanout:
    def test_serial_map(self):
        assert fanout(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        assert fanout(_square, list(range(10)), jobs=3) == [
            x * x for x in range(10)
        ]

    def test_empty_tasks(self):
        assert fanout(_square, [], jobs=4) == []

    def test_single_task_stays_in_process(self):
        assert fanout(_square, [7], jobs=4) == [49]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            fanout(_square, [1], jobs=0)
        with pytest.raises(ValidationError):
            resolve_jobs(-2)

    def test_worker_errors_propagate_as_task_error(self):
        """A raising worker surfaces as a TaskError naming the task, not an
        anonymous pool exception."""
        with pytest.raises(TaskError) as excinfo:
            fanout(_fail_on_odd, [2, 3], jobs=2)
        error = excinfo.value
        assert error.task == 3
        assert error.attempts == 1
        assert "odd: 3" in (error.cause_traceback or "")

    def test_serial_worker_errors_also_wrapped(self):
        with pytest.raises(TaskError) as excinfo:
            fanout(_fail_on_odd, [2, 3], jobs=1)
        assert excinfo.value.task == 3


def _flaky_until_marked(task):
    """Fails until its sentinel file exists — i.e. exactly once per task."""
    sentinel, value = task
    path = Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError(f"transient failure for {value}")
    return value * 10


def _crash_until_marked(task):
    """Kills the worker process outright on the first attempt."""
    sentinel, value = task
    path = Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        os._exit(17)  # hard crash: no exception, no cleanup
    return value * 10


def _hang_on_negative(value):
    if value < 0:
        time.sleep(60)
    return value * 10


def _double(value):
    return value * 2


class TestFanoutFaultTolerance:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retried_to_success(self, tmp_path, jobs):
        tasks = [(str(tmp_path / f"s{i}"), i) for i in range(4)]
        report = fanout_report(
            _flaky_until_marked, tasks, jobs=jobs, policy=FAST_RETRY
        )
        assert report.ok
        assert report.results == [0, 10, 20, 30]
        assert report.retried == 4  # each task failed exactly once

    def test_exhausted_budget_collected_per_task(self):
        report = fanout_report(
            _fail_on_odd, [1, 2, 3, 4], jobs=2,
            policy=RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
        )
        assert not report.ok
        assert report.results == [None, 2, None, 4]  # completed work kept
        assert [e.task for e in report.failures] == [1, 3]
        assert all(e.attempts == 2 for e in report.failures)
        with pytest.raises(TaskError):
            report.raise_on_failure()

    def test_worker_crash_retried_on_fresh_pool(self, tmp_path):
        """os._exit kills the worker (BrokenProcessPool); the task must be
        retried on a rebuilt pool and succeed, not abort the campaign."""
        tasks = [(str(tmp_path / f"c{i}"), i) for i in range(3)]
        report = fanout_report(
            _crash_until_marked, tasks, jobs=2, policy=FAST_RETRY
        )
        assert report.ok
        assert report.results == [0, 10, 20]

    def test_hung_worker_times_out_and_fails_cleanly(self):
        report = fanout_report(
            _hang_on_negative, [1, -1, 2, 3], jobs=2,
            policy=RetryPolicy(attempts=1),
            task_timeout=1.0,
        )
        assert [e.task for e in report.failures] == [-1]
        assert isinstance(report.failures[0], TaskTimeoutError)
        # Innocent siblings sharing the pool still completed.
        assert report.results == [10, None, 20, 30]

    def test_serial_timeout(self):
        report = fanout_report(
            _hang_on_negative, [-1, 5], jobs=1,
            policy=RetryPolicy(attempts=1),
            task_timeout=0.2,
        )
        assert isinstance(report.failures[0], TaskTimeoutError)
        assert report.results == [None, 50]

    def test_journal_requires_key_fn(self, tmp_path):
        with pytest.raises(ValidationError):
            fanout_report(
                _double, [1], journal=TaskJournal(tmp_path)
            )


class TestFanoutJournal:
    def test_results_checkpointed_as_they_complete(self, tmp_path):
        journal = TaskJournal(tmp_path)
        report = fanout_report(
            _double, [1, 2, 3], jobs=1, journal=journal,
            key_fn=lambda t: ("double", t),
        )
        assert report.results == [2, 4, 6]
        assert len(journal) == 3
        assert journal.load(("double", 2)) == 4

    def test_journaled_tasks_restored_not_rerun(self, tmp_path):
        journal = TaskJournal(tmp_path / "ckpt")
        journal.put(("id", 2), "precomputed")
        report = fanout_report(
            _double, [1, 2, 3], jobs=1, journal=journal,
            key_fn=lambda t: ("id", t),
        )
        # Task 2 came from the journal verbatim; the others ran.
        assert report.results == [2, "precomputed", 6]
        assert report.restored == 1

    def test_failed_run_keeps_completed_checkpoints_for_resume(
        self, tmp_path
    ):
        journal = TaskJournal(tmp_path)
        first = fanout_report(
            _fail_on_odd, [2, 3, 4], jobs=1,
            journal=journal, key_fn=lambda t: t,
        )
        assert [e.task for e in first.failures] == [3]
        assert len(journal) == 2  # 2 and 4 checkpointed despite the failure
        # Resume with a fixed worker: only the failed task runs.
        second = fanout_report(
            _double, [2, 3, 4], jobs=1,
            journal=journal, key_fn=lambda t: t,
        )
        assert second.ok
        assert second.restored == 2
        assert second.results == [2, 6, 4]  # restored values untouched

    def test_encode_decode_round_trip(self, tmp_path):
        journal = TaskJournal(tmp_path)
        kwargs = dict(
            journal=journal,
            key_fn=lambda t: t,
            encode=lambda result: {"wrapped": result},
            decode=lambda payload: payload["wrapped"],
        )
        fanout_report(_double, [5], jobs=1, **kwargs)
        resumed = fanout_report(_double, [5], jobs=1, **kwargs)
        assert resumed.restored == 1
        assert resumed.results == [10]


def _result_bytes(results):
    return json.dumps([r.to_json() for r in results], sort_keys=True)


class TestByteIdenticalRuns:
    # A small but representative subset keeps this fast: a ratio table
    # (per-p_t columns), fig1 (random-baseline trials) and fig2 (per-cell
    # sweep with workload rebuild in workers).
    NAMES = ["table1", "fig1", "fig2"]

    def test_run_all_jobs_matches_serial(self):
        serial = run_all(scale="quick", seed=3, names=self.NAMES, jobs=1)
        parallel = run_all(scale="quick", seed=3, names=self.NAMES, jobs=2)
        assert _result_bytes(serial) == _result_bytes(parallel)

    def test_inner_jobs_match_serial(self):
        """Per-experiment fan-out (sweep cells / trials) is also inert."""
        for name in self.NAMES:
            a = run_experiment(name, scale="quick", seed=5, jobs=1)
            b = run_experiment(name, scale="quick", seed=5, jobs=2)
            assert _result_bytes([a]) == _result_bytes([b])

    def test_run_all_timed_reports_durations(self):
        timed = run_all_timed(scale="quick", seed=1, names=["table1"])
        assert len(timed) == 1
        result, elapsed = timed[0]
        assert result.name == "table1"
        assert elapsed > 0


class TestRandomBaselineJobs:
    def test_jobs_identical_to_serial(self, tiny_instance):
        serial = solve_random_baseline(tiny_instance, seed=9, trials=40)
        parallel = solve_random_baseline(
            tiny_instance, seed=9, trials=40, jobs=2
        )
        assert serial.edges == parallel.edges
        assert serial.sigma == parallel.sigma
        assert serial.trace == parallel.trace

    def test_trial_prefix_property(self, tiny_instance):
        """Per-trial seed spawning: a longer run replays the shorter run's
        trials exactly, then continues."""
        short = solve_random_baseline(tiny_instance, seed=11, trials=10)
        long = solve_random_baseline(tiny_instance, seed=11, trials=25)
        assert long.trace[:10] == short.trace

    def test_custom_sigma_falls_back_to_serial(self, tiny_instance):
        from repro.core.evaluator import SigmaEvaluator

        sigma = SigmaEvaluator(tiny_instance)
        result = solve_random_baseline(
            tiny_instance, seed=13, trials=10, sigma=sigma, jobs=4
        )
        reference = solve_random_baseline(
            tiny_instance, seed=13, trials=10
        )
        assert result.sigma == reference.sigma
        assert result.edges == reference.edges


class TestRunWithSeedsJobs:
    def test_jobs_identical_aggregate(self):
        from repro.experiments.stats import run_with_seeds

        serial = run_with_seeds("table1", seeds=[1, 2], scale="quick")
        parallel = run_with_seeds(
            "table1", seeds=[1, 2], scale="quick", jobs=2
        )
        assert _result_bytes([serial]) == _result_bytes([parallel])


class TestCliJobs:
    def test_run_all_with_jobs_prints_speedup_summary(self, capsys):
        code = main(
            [
                "run",
                "table1",
                "fig1",
                "--scale",
                "quick",
                "--jobs",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "finished in" in out
        assert "serial-equivalent" in out and "speedup" in out

    def test_single_experiment_with_jobs(self, capsys):
        code = main(
            ["run", "table1", "--scale", "quick", "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[table1 finished in" in out

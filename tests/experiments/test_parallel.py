"""Tests for the deterministic experiment fan-out: ``fanout`` itself, the
byte-identity of parallel vs serial runs at every level (run_all, figure
sweeps, random-baseline trials, multi-seed stats), and the CLI flag."""

import json

import pytest

from repro.cli import main
from repro.core.random_baseline import solve_random_baseline
from repro.exceptions import ValidationError
from repro.experiments.parallel import fanout, resolve_jobs
from repro.experiments.runner import run_all, run_all_timed, run_experiment


def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd: {x}")
    return x


class TestFanout:
    def test_serial_map(self):
        assert fanout(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        assert fanout(_square, list(range(10)), jobs=3) == [
            x * x for x in range(10)
        ]

    def test_empty_tasks(self):
        assert fanout(_square, [], jobs=4) == []

    def test_single_task_stays_in_process(self):
        assert fanout(_square, [7], jobs=4) == [49]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            fanout(_square, [1], jobs=0)
        with pytest.raises(ValidationError):
            resolve_jobs(-2)

    def test_worker_errors_propagate(self):
        with pytest.raises(ValueError):
            fanout(_fail_on_odd, [2, 3], jobs=2)


def _result_bytes(results):
    return json.dumps([r.to_json() for r in results], sort_keys=True)


class TestByteIdenticalRuns:
    # A small but representative subset keeps this fast: a ratio table
    # (per-p_t columns), fig1 (random-baseline trials) and fig2 (per-cell
    # sweep with workload rebuild in workers).
    NAMES = ["table1", "fig1", "fig2"]

    def test_run_all_jobs_matches_serial(self):
        serial = run_all(scale="quick", seed=3, names=self.NAMES, jobs=1)
        parallel = run_all(scale="quick", seed=3, names=self.NAMES, jobs=2)
        assert _result_bytes(serial) == _result_bytes(parallel)

    def test_inner_jobs_match_serial(self):
        """Per-experiment fan-out (sweep cells / trials) is also inert."""
        for name in self.NAMES:
            a = run_experiment(name, scale="quick", seed=5, jobs=1)
            b = run_experiment(name, scale="quick", seed=5, jobs=2)
            assert _result_bytes([a]) == _result_bytes([b])

    def test_run_all_timed_reports_durations(self):
        timed = run_all_timed(scale="quick", seed=1, names=["table1"])
        assert len(timed) == 1
        result, elapsed = timed[0]
        assert result.name == "table1"
        assert elapsed > 0


class TestRandomBaselineJobs:
    def test_jobs_identical_to_serial(self, tiny_instance):
        serial = solve_random_baseline(tiny_instance, seed=9, trials=40)
        parallel = solve_random_baseline(
            tiny_instance, seed=9, trials=40, jobs=2
        )
        assert serial.edges == parallel.edges
        assert serial.sigma == parallel.sigma
        assert serial.trace == parallel.trace

    def test_trial_prefix_property(self, tiny_instance):
        """Per-trial seed spawning: a longer run replays the shorter run's
        trials exactly, then continues."""
        short = solve_random_baseline(tiny_instance, seed=11, trials=10)
        long = solve_random_baseline(tiny_instance, seed=11, trials=25)
        assert long.trace[:10] == short.trace

    def test_custom_sigma_falls_back_to_serial(self, tiny_instance):
        from repro.core.evaluator import SigmaEvaluator

        sigma = SigmaEvaluator(tiny_instance)
        result = solve_random_baseline(
            tiny_instance, seed=13, trials=10, sigma=sigma, jobs=4
        )
        reference = solve_random_baseline(
            tiny_instance, seed=13, trials=10
        )
        assert result.sigma == reference.sigma
        assert result.edges == reference.edges


class TestRunWithSeedsJobs:
    def test_jobs_identical_aggregate(self):
        from repro.experiments.stats import run_with_seeds

        serial = run_with_seeds("table1", seeds=[1, 2], scale="quick")
        parallel = run_with_seeds(
            "table1", seeds=[1, 2], scale="quick", jobs=2
        )
        assert _result_bytes([serial]) == _result_bytes([parallel])


class TestCliJobs:
    def test_run_all_with_jobs_prints_speedup_summary(self, capsys):
        code = main(
            [
                "run",
                "table1",
                "fig1",
                "--scale",
                "quick",
                "--jobs",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "finished in" in out
        assert "serial-equivalent" in out and "speedup" in out

    def test_single_experiment_with_jobs(self, capsys):
        code = main(
            ["run", "table1", "--scale", "quick", "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[table1 finished in" in out

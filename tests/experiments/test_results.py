"""Tests for repro.experiments.results."""

from repro.experiments.results import ExperimentResult


class TestExperimentResult:
    def test_render_includes_everything(self):
        result = ExperimentResult(
            name="t", title="Title", params={"k": 3}
        )
        result.add_table("Tab", ["a"], [[1]])
        result.add_series("Fig", "x", [1, 2], [("s", [3, 4])])
        result.notes.append("shape ok")
        text = result.render()
        assert "== t: Title ==" in text
        assert "k=3" in text
        assert "Tab" in text and "Fig" in text
        assert "note: shape ok" in text

    def test_to_json_roundtrip(self, tmp_path):
        result = ExperimentResult(name="t", title="Title")
        result.add_table("Tab", ["a"], [[1]])
        path = tmp_path / "r.json"
        data = result.to_json(str(path))
        assert data["name"] == "t"
        assert path.exists()

    def test_series_tuples_normalized(self):
        result = ExperimentResult(name="t", title="T")
        result.add_series("F", "x", (1,), [("s", (2,))])
        assert result.series[0]["x"] == [1]
        assert result.series[0]["series"][0][1] == [2]

    def test_precision_forwarded(self):
        result = ExperimentResult(name="t", title="T")
        result.add_table("Tab", ["a"], [[0.123456]])
        assert "0.12" in result.render(precision=2)
        assert "0.1235" in result.render(precision=4)

"""Tests for the supplementary experiments (ablations + MSC-CN)."""

import pytest

from repro.experiments.ablations import (
    run_ablation_aea,
    run_ablation_ea_mutation,
    run_ablation_sandwich,
)
from repro.experiments.msc_cn_exp import run_msc_cn
from repro.experiments.runner import (
    SUPPLEMENTARY,
    all_experiment_names,
    get_experiment,
)

pytestmark = pytest.mark.slow


class TestRegistry:
    def test_supplementary_registered(self):
        assert set(SUPPLEMENTARY) == {
            "ablation_sandwich", "ablation_aea", "ablation_ea",
            "ablation_warmstart",
            "msc_cn", "delivery", "prediction", "generality",
            "replanning", "robustness",
        }

    def test_lookup_finds_supplementary(self):
        assert get_experiment("ablation_aea") is run_ablation_aea

    def test_all_names_superset(self):
        names = all_experiment_names()
        assert "table1" in names and "msc_cn" in names


class TestAblationSandwich:
    def test_best_is_max_of_components(self):
        result = run_ablation_sandwich(scale="quick", seed=1)
        for row in result.tables[0]["rows"]:
            _i, mu, sig, nu, best, winner = row
            assert best == max(mu, sig, nu)
            assert winner in ("mu", "sigma", "nu")

    def test_winner_counts_sum_to_instances(self):
        result = run_ablation_sandwich(scale="quick", seed=1)
        counts = sum(r[1] for r in result.tables[1]["rows"])
        assert counts == len(result.tables[0]["rows"])


class TestAblationAea:
    def test_delta_sweep_covers_extremes(self):
        result = run_ablation_aea(scale="quick", seed=1)
        deltas = [row[0] for row in result.tables[0]["rows"]]
        assert 0.0 in deltas and 1.0 in deltas

    def test_pure_random_costs_fewest_evaluations(self):
        """δ=1.0 (all random swaps) performs one evaluation per iteration;
        greedy swaps cost k+1."""
        result = run_ablation_aea(scale="quick", seed=1)
        rows = {row[0]: row[2] for row in result.tables[0]["rows"]}
        assert rows[1.0] < rows[0.0]


class TestAblationEa:
    def test_sigma_nondecreasing_in_budget(self):
        result = run_ablation_ea_mutation(scale="quick", seed=1)
        sigmas = [row[1] for row in result.tables[0]["rows"]]
        assert sigmas == sorted(sigmas)

    def test_greedy_reference_recorded(self):
        result = run_ablation_ea_mutation(scale="quick", seed=1)
        assert result.params["greedy_sigma"] >= 0


class TestMscCnExperiment:
    def test_bound_confirmed(self):
        result = run_msc_cn(scale="quick", seed=1)
        assert "yes" in result.notes[0]

    def test_greedy_close_to_exact(self):
        result = run_msc_cn(scale="quick", seed=1)
        for row in result.tables[0]["rows"]:
            _i, _k, greedy, aa, rnd, exact = row
            if exact != "-":
                assert greedy <= exact
                assert greedy >= (1 - 1 / 2.718281828) * exact - 1e-9

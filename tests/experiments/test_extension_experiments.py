"""Direct tests for the extension experiments (prediction, replanning,
generality) — shapes asserted at quick scale."""

import pytest

from repro.experiments.generality_exp import run_generality
from repro.experiments.prediction_exp import run_prediction
from repro.experiments.replanning_exp import run_replanning

pytestmark = pytest.mark.slow


class TestPredictionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_prediction(scale="quick", seed=1)

    def test_oracle_is_ceiling(self, result):
        rows = result.tables[0]["rows"]
        oracle = rows[0][2]
        assert rows[0][0] == "oracle"
        assert all(row[2] <= oracle for row in rows[1:])

    def test_frozen_baseline_present(self, result):
        labels = [row[0] for row in result.tables[0]["rows"]]
        assert "frozen" in labels
        assert any(label.startswith("predicted") for label in labels)

    def test_prediction_errors_reported(self, result):
        for row in result.tables[0]["rows"][1:]:
            assert row[1] > 0  # positional error in meters

    def test_recovery_note(self, result):
        assert "recovers" in result.notes[0]


class TestReplanningExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_replanning(scale="quick", seed=1)

    def test_static_first_with_zero_relocations(self, result):
        first = result.tables[0]["rows"][0]
        assert first[3] == 0  # relocations
        assert first[4] == 1  # single placement

    def test_smaller_windows_never_fewer_placements(self, result):
        placements = [row[4] for row in result.tables[0]["rows"]]
        assert placements == sorted(placements)

    def test_per_snapshot_window_dominates_static(self, result):
        rows = result.tables[0]["rows"]
        static_sigma = rows[0][1]
        best = max(row[1] for row in rows)
        # per-snapshot re-optimization is the offline reference; it must be
        # at least the static value (each chunk optimized separately)
        assert best >= static_sigma

    def test_totals_bounded_by_max(self, result):
        max_total = result.params["max_total"]
        for row in result.tables[0]["rows"]:
            assert 0 <= row[1] <= max_total


class TestGeneralityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_generality(scale="quick", seed=1)

    def test_both_network_families_present(self, result):
        networks = {row[0] for row in result.tables[0]["rows"]}
        assert networks == {"erdos-renyi", "barabasi-albert"}

    def test_orderings_note(self, result):
        assert "yes" in result.notes[-1]

    def test_aa_grows_with_k(self, result):
        by_network = {}
        for row in result.tables[0]["rows"]:
            by_network.setdefault(row[0], []).append(row[2])
        for values in by_network.values():
            assert values == sorted(values)

    def test_ratios_valid(self, result):
        for row in result.tables[0]["rows"]:
            assert 0.0 <= row[6] <= 1.0 + 1e-9

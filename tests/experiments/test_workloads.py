"""Tests for repro.experiments.workloads."""

import pytest

from repro.experiments.workloads import (
    gowalla_workload,
    rg_workload,
    tactical_dynamic_instance,
)


class TestRgWorkload:
    def test_builds_connected_graph(self):
        w = rg_workload(seed=1, n=60)
        assert w.name == "rg"
        assert w.graph.number_of_nodes() > 0
        assert w.positions is not None

    def test_instance_sampling(self):
        w = rg_workload(seed=1, n=60)
        inst = w.instance(0.08, m=10, k=3, seed=2)
        assert inst.m == 10
        assert inst.k == 3
        assert inst.oracle is w.oracle  # oracle shared, APSP reused

    def test_instance_deterministic(self):
        w = rg_workload(seed=1, n=60)
        a = w.instance(0.08, m=10, k=3, seed=2)
        b = w.instance(0.08, m=10, k=3, seed=2)
        assert a.pairs == b.pairs


class TestGowallaWorkload:
    def test_paper_scale(self):
        w = gowalla_workload(seed=1)
        assert w.graph.number_of_nodes() == 134

    def test_instance_at_paper_thresholds(self):
        w = gowalla_workload(seed=1)
        for p_t in (0.23, 0.27, 0.31, 0.35):
            inst = w.instance(p_t, m=20, k=4, seed=(1, p_t))
            assert inst.m == 20


class TestTacticalDynamic:
    def test_builds_dynamic_instance(self):
        dyn = tactical_dynamic_instance(
            0.11, m=8, k=4, T=3, seed=1, n=25
        )
        assert dyn.T == 3
        assert dyn.k == 4
        assert dyn.total_pairs == 24

    def test_shared_node_universe(self):
        dyn = tactical_dynamic_instance(
            0.11, m=6, k=3, T=4, seed=2, n=20
        )
        nodes = dyn.instances[0].graph.nodes
        assert all(inst.graph.nodes == nodes for inst in dyn.instances)

    def test_deterministic(self):
        a = tactical_dynamic_instance(0.11, m=6, k=3, T=3, seed=5, n=20)
        b = tactical_dynamic_instance(0.11, m=6, k=3, T=3, seed=5, n=20)
        assert [i.pairs for i in a.instances] == [
            i.pairs for i in b.instances
        ]

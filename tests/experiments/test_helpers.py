"""Unit tests for the experiment runners' helper functions."""

import pytest

from repro.core.problem import MSCInstance
from repro.experiments.fig2 import _with_budget
from repro.experiments.fig4 import _trace_at
from repro.experiments.fig5 import _with_budget as _dyn_with_budget
from repro.experiments.table1 import _trend_note
from tests.conftest import path_graph


class TestTraceAt:
    def test_picks_best_so_far_at_checkpoints(self):
        trace = [1, 1, 2, 2, 3, 5, 5]
        assert _trace_at(trace, [1, 3, 7]) == [1, 2, 5]

    def test_checkpoint_beyond_trace_clamps(self):
        assert _trace_at([1, 2], [5]) == [2]

    def test_empty_trace(self):
        assert _trace_at([], [1, 2]) == [0, 0]


class TestWithBudget:
    def test_static_budget_clone(self, tiny_instance):
        clone = _with_budget(tiny_instance, 1)
        assert clone.k == 1
        assert clone.pairs == tiny_instance.pairs
        assert clone.d_threshold == tiny_instance.d_threshold
        assert clone.oracle is tiny_instance.oracle  # APSP reused

    def test_dynamic_budget_clone(self):
        g = path_graph([1.0] * 4)
        from repro.dynamics.series import DynamicMSCInstance

        dyn = DynamicMSCInstance(
            [MSCInstance(g, [(0, 4)], 3, d_threshold=1.5)]
        )
        scoped = _dyn_with_budget(dyn, 1)
        assert scoped.k == 1
        assert scoped.T == dyn.T


class TestTrendNote:
    def make_grid(self, first, last):
        from repro.core.ratio import RatioReport

        return {
            0.1: [
                RatioReport(ratio=first, sigma_value=1, nu_value=2, k=2),
                RatioReport(ratio=last, sigma_value=1, nu_value=2, k=4),
            ]
        }

    def test_down(self):
        note = _trend_note(self.make_grid(0.5, 0.3), [0.1], [2, 4])
        assert "0.1:down" in note

    def test_up(self):
        note = _trend_note(self.make_grid(0.3, 0.5), [0.1], [2, 4])
        assert "0.1:up" in note

    def test_flat(self):
        note = _trend_note(self.make_grid(0.4, 0.4), [0.1], [2, 4])
        assert "0.1:flat" in note

"""Tests for repro.experiments.stats (multi-seed aggregation)."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.results import ExperimentResult
from repro.experiments.stats import aggregate_results, run_with_seeds


def result_with(name="exp", sigma_values=(1, 3), label="A"):
    result = ExperimentResult(
        name=name, title="T", params={"seed": 1, "k": 2}
    )
    result.add_table(
        "tab", ["label", "sigma"], [[label, sigma_values[0]]]
    )
    result.add_series(
        "fig", "k", [2, 4], [("AA", list(sigma_values))]
    )
    return result


class TestAggregateResults:
    def test_means_and_stds(self):
        merged = aggregate_results(
            [result_with(sigma_values=(1, 3)),
             result_with(sigma_values=(3, 5))]
        )
        fig = merged.series[0]
        series = dict(fig["series"])
        assert series["AA"] == [2.0, 4.0]
        # sample std of {1,3} and {3,5} is sqrt(2) each
        assert series["AA ±std"][0] == pytest.approx(2 ** 0.5)

    def test_table_numeric_cells_averaged(self):
        merged = aggregate_results(
            [result_with(sigma_values=(2, 2)),
             result_with(sigma_values=(4, 4))]
        )
        row = merged.tables[0]["rows"][0]
        assert row == ["A", 3.0]

    def test_matching_labels_kept(self):
        merged = aggregate_results([result_with(), result_with()])
        assert merged.tables[0]["rows"][0][0] == "A"

    def test_disagreeing_labels_rejected(self):
        with pytest.raises(ValidationError, match="disagree"):
            aggregate_results(
                [result_with(label="A"), result_with(label="B")]
            )

    def test_mixed_names_rejected(self):
        with pytest.raises(ValidationError, match="aggregate"):
            aggregate_results(
                [result_with(name="a"), result_with(name="b")]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="nothing"):
            aggregate_results([])

    def test_params_record_seed_count(self):
        merged = aggregate_results([result_with(), result_with()])
        assert merged.params["seeds"] == 2
        assert "seed" not in merged.params

    def test_single_result_zero_std(self):
        merged = aggregate_results([result_with()])
        series = dict(merged.series[0]["series"])
        assert series["AA ±std"] == [0.0, 0.0]


@pytest.mark.slow
class TestRunWithSeeds:
    def test_table1_across_seeds(self):
        merged = run_with_seeds("table1", seeds=[1, 2], scale="quick")
        assert merged.params["seeds"] == 2
        # averaged ratios remain valid ratios
        for row in merged.tables[0]["rows"]:
            assert all(0.0 <= cell <= 1.0 + 1e-9 for cell in row[1:])

"""Integration tests: every experiment runs at quick scale and produces
the paper's qualitative shapes."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import SCALES, get_scale
from repro.experiments.runner import (
    EXPERIMENTS,
    experiment_names,
    get_experiment,
    run_experiment,
)

pytestmark = pytest.mark.slow  # these run whole experiments


class TestConfig:
    def test_scales_registered(self):
        assert set(SCALES) == {"paper", "quick"}

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValidationError, match="unknown scale"):
            get_scale("huge")

    def test_paper_matches_published_parameters(self):
        paper = get_scale("paper")
        assert paper.table1_m == 17
        assert paper.table2_m == 63
        assert paper.fig3_m_rg == 80
        assert paper.fig3_m_gw == 76
        assert paper.fig3_iterations == 500
        assert paper.fig5_n == 50
        assert paper.fig5_m == 30
        assert paper.fig5_T == 30
        assert list(paper.table1_k) == [2, 4, 6, 8, 10]
        assert list(paper.table1_p) == [0.04, 0.08, 0.11, 0.14, 0.18]
        assert list(paper.table2_p) == [0.23, 0.27, 0.31, 0.35]


class TestRegistry:
    def test_all_tables_and_figures_present(self):
        assert experiment_names() == [
            "fig1", "fig2", "fig3", "fig4", "fig5", "table1", "table2",
        ]

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            get_experiment("fig9")


class TestTable1:
    def test_ratios_valid(self):
        result = run_experiment("table1", scale="quick", seed=1)
        table = result.tables[0]
        for row in table["rows"]:
            for ratio in row[1:]:
                assert 0.0 <= ratio <= 1.0 + 1e-9

    def test_render_is_text(self):
        result = run_experiment("table1", scale="quick", seed=1)
        assert "Table I" in result.render()


class TestTable2:
    def test_ratios_valid(self):
        result = run_experiment("table2", scale="quick", seed=1)
        for row in result.tables[0]["rows"]:
            for ratio in row[1:]:
                assert 0.0 <= ratio <= 1.0 + 1e-9


class TestFig1:
    def test_aa_beats_or_ties_random(self):
        result = run_experiment("fig1", scale="quick", seed=1)
        rows = {r[0]: r[1] for r in result.tables[0]["rows"]}
        assert rows["sandwich"] >= rows["random"]

    def test_positions_emitted(self):
        result = run_experiment("fig1", scale="quick", seed=1)
        assert len(result.params["positions"]) > 0


class TestFig2:
    def test_aa_dominates_random_everywhere(self):
        result = run_experiment("fig2", scale="quick", seed=1)
        for fig in result.series:
            series = dict(fig["series"])
            for name, values in series.items():
                if name.startswith("AA"):
                    partner = name.replace("AA", "random")
                    assert all(
                        a >= r for a, r in zip(values, series[partner])
                    ), (name, values, series[partner])

    def test_monotone_in_k(self):
        result = run_experiment("fig2", scale="quick", seed=1)
        for fig in result.series:
            for name, values in fig["series"]:
                if name.startswith("AA"):
                    assert all(
                        a <= b for a, b in zip(values, values[1:])
                    ), (name, values)


class TestFig3:
    def test_aa_and_aea_beat_ea(self):
        result = run_experiment("fig3", scale="quick", seed=1)
        for fig in result.series:
            series = dict(fig["series"])
            for name, values in series.items():
                if name.startswith("EA"):
                    aa = series[name.replace("EA", "AA")]
                    assert sum(aa) >= sum(values), (name, aa, values)


class TestFig4:
    def test_traces_monotone_in_r(self):
        result = run_experiment("fig4", scale="quick", seed=1)
        for fig in result.series:
            for name, values in fig["series"]:
                assert all(a <= b for a, b in zip(values, values[1:])), (
                    name,
                    values,
                )


class TestFig5:
    def test_totals_grow_with_T(self):
        result = run_experiment("fig5", scale="quick", seed=1)
        by_title = {fig["title"]: fig for fig in result.series}
        fig_b = next(
            fig for title, fig in by_title.items()
            if "vs T" in title and "average" not in title
        )
        for name, values in fig_b["series"]:
            assert all(a <= b for a, b in zip(values, values[1:])), (
                name,
                values,
            )

    def test_dynamic_totals_bounded(self):
        result = run_experiment("fig5", scale="quick", seed=1)
        scale = get_scale("quick")
        fig_a = result.series[0]
        bound = scale.fig5_m * scale.fig5_T
        for _name, values in fig_a["series"]:
            assert all(0 <= v <= bound for v in values)

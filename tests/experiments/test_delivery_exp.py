"""Tests for the delivery validation experiment."""

import pytest

from repro.experiments.delivery_exp import run_delivery

pytestmark = pytest.mark.slow


class TestDeliveryExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_delivery(scale="quick", seed=1)

    def test_model_never_contradicted(self, result):
        assert any("0 (expected 0)" in note for note in result.notes)

    def test_flooding_overhead_quantified(self, result):
        assert any("flooding costs" in note for note in result.notes)
        rows = {
            (r[0], r[1]): r[2] for r in result.tables[1]["rows"]
        }
        # flooding pays far more transmissions per delivery than best-path
        assert rows[("after", "flooding")] > rows[("after", "best_path")]

    def test_placement_improves_best_path(self, result):
        rows = {
            (r[0], r[1]): (r[2], r[3]) for r in result.tables[0]["rows"]
        }
        before_rate, before_ok = rows[("before", "best_path")]
        after_rate, after_ok = rows[("after", "best_path")]
        assert after_rate >= before_rate
        assert after_ok >= before_ok

    def test_strategy_dominance(self, result):
        rows = {
            (r[0], r[1]): r[2] for r in result.tables[0]["rows"]
        }
        for stage in ("before", "after"):
            assert (
                rows[(stage, "flooding")]
                >= rows[(stage, "multipath")] - 0.02
            )
            assert (
                rows[(stage, "multipath")]
                >= rows[(stage, "best_path")] - 0.02
            )

    def test_before_best_path_violates_requirement(self, result):
        """The important pairs were chosen to violate p_t, so without
        shortcuts no pair's best path should clear 1 - p_t (up to noise)."""
        rows = {
            (r[0], r[1]): r[3] for r in result.tables[0]["rows"]
        }
        assert rows[("before", "best_path")] <= 1

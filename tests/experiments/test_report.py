"""Tests for repro.experiments.report (markdown report builder)."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.report import (
    build_report,
    result_to_markdown,
    write_report,
)
from repro.experiments.results import ExperimentResult
from repro.util.serialization import dump_json


def sample_result():
    result = ExperimentResult(
        name="table1", title="Ratio grid", params={"k": [2, 4], "seed": 1}
    )
    result.add_table("Table I", ["k", "ratio"], [[2, 0.5], [4, 0.25]])
    result.add_series("fig", "k", [2, 4], [("AA", [3, 5])])
    result.notes.append("shape holds")
    return result


class TestResultToMarkdown:
    def test_contains_all_blocks(self):
        text = result_to_markdown(sample_result().to_json())
        assert "## table1 — Ratio grid" in text
        assert "| k | ratio |" in text
        assert "| 2 | 0.5000 |" in text
        assert "| k | AA |" in text
        assert "> shape holds" in text
        assert "`seed=1`" in text

    def test_positions_param_omitted(self):
        result = sample_result()
        result.params["positions"] = {"0": [0.1, 0.2]}
        text = result_to_markdown(result.to_json())
        assert "positions" not in text

    def test_missing_fields_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            result_to_markdown({"title": "x"})

    def test_pipe_escaped(self):
        result = ExperimentResult(name="t", title="T")
        result.add_table("tab", ["a"], [["x|y"]])
        assert "x\\|y" in result_to_markdown(result.to_json())


class TestBuildReport:
    def test_combines_multiple_files(self, tmp_path):
        one = tmp_path / "one.json"
        two = tmp_path / "two.json"
        dump_json([sample_result().to_json()], one)
        dump_json(sample_result().to_json(), two)  # single-dict shape
        text = build_report([one, two], title="My report")
        assert text.startswith("# My report")
        assert text.count("## table1") == 2

    def test_bad_payload_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        dump_json([42], bad)
        with pytest.raises(ValidationError, match="result dict"):
            build_report([bad])

    def test_write_report_creates_dirs(self, tmp_path):
        src = tmp_path / "r.json"
        dump_json(sample_result().to_json(), src)
        out = tmp_path / "deep" / "report.md"
        write_report([src], out)
        assert out.read_text().startswith("# MSC reproduction report")


class TestCliReport:
    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "r.json"
        dump_json([sample_result().to_json()], src)
        out = tmp_path / "report.md"
        assert main(["report", str(src), "-o", str(out)]) == 0
        assert "Ratio grid" in out.read_text()
